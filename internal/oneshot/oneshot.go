// Package oneshot implements the one-shot (k-party communication) versions
// of the three problems, which Section 1.3 of the paper uses as the
// reference point for the tracking costs:
//
//   - count: trivial — every site reports its count once (k words);
//   - frequency, deterministic: each site ships a Misra–Gries summary and
//     the coordinator merges them — O(k/ε) words [20, 1];
//   - frequency, randomized: probability-proportional-to-size reporting of
//     local counts at rate p = √k/(εn) — O(√k/ε) words, the [14] bound;
//   - rank, deterministic: each site ships a GK summary — O(k/ε·log) words;
//   - rank, randomized: random-shift systematic sampling of each site's
//     sorted data at stride τ = εn/√k — O(√k/ε) words with per-site rank
//     variance τ²/4, the [13] bound.
//
// The tracking protocols must solve this problem continuously; the paper's
// observation — reproduced by experiment E13 — is that tracking costs only
// a Θ(logN) factor more than one-shot for frequencies and ranks, while
// count tracking is fundamentally harder than its (trivial) one-shot
// version.
package oneshot

import (
	"math"
	"sort"

	"disttrack/internal/stats"
	"disttrack/internal/summary/gk"
	"disttrack/internal/summary/mg"
)

// Result bundles a one-shot answer function with its communication cost in
// words (the k-party model has no broadcast subtleties: every word a site
// sends to the coordinator counts once; small per-protocol header words are
// included).
type Result struct {
	Words int64
}

// Count solves one-shot count tracking: each site reports once.
func Count(siteCounts []int64) (total int64, res Result) {
	for _, c := range siteCounts {
		total += c
	}
	res.Words = int64(len(siteCounts))
	return total, res
}

// FreqDet merges per-site Misra–Gries summaries with m = ⌈2/ε⌉ counters
// each: the merged summary answers any frequency within εn.
func FreqDet(streams [][]int64, eps float64) (estimate func(int64) int64, res Result) {
	if eps <= 0 || eps >= 1 {
		panic("oneshot: eps out of (0,1)")
	}
	m := int(2/eps) + 1
	merged := mg.New(m)
	for _, stream := range streams {
		local := mg.New(m)
		for _, j := range stream {
			local.Add(j)
		}
		res.Words += int64(local.SpaceWords()) + 1
		merged.Merge(local)
	}
	return merged.Estimate, res
}

// FreqRand implements the randomized one-shot frequency protocol: every
// site knows its exact local counts c_ij and reports (item, count) with
// probability q_ij = min(1, c_ij·p), p = √k/(εn); the coordinator estimates
// f_j = Σ_i reported c_ij / q_ij (Horvitz–Thompson, unbiased, per-site
// variance ≤ 1/p² so total (εn)²). Expected words: 2·n·p = 2√k/ε.
func FreqRand(streams [][]int64, eps float64, rng *stats.RNG) (estimate func(int64) float64, res Result) {
	if eps <= 0 || eps >= 1 {
		panic("oneshot: eps out of (0,1)")
	}
	k := len(streams)
	var n int64
	for _, s := range streams {
		n += int64(len(s))
	}
	if n == 0 {
		return func(int64) float64 { return 0 }, res
	}
	p := math.Sqrt(float64(k)) / (eps * float64(n))
	est := make(map[int64]float64)
	for _, stream := range streams {
		counts := map[int64]int64{}
		for _, j := range stream {
			counts[j]++
		}
		for j, c := range counts {
			q := float64(c) * p
			if q >= 1 {
				est[j] += float64(c)
				res.Words += 2
				continue
			}
			if rng.Bernoulli(q) {
				est[j] += float64(c) / q
				res.Words += 2
			}
		}
	}
	return func(j int64) float64 { return est[j] }, res
}

// RankDet merges per-site GK summaries at error ε/2: summed rank estimates
// are within Σ_i (ε/2)·n_i = εn/2.
func RankDet(streams [][]float64, eps float64) (rank func(float64) int64, res Result) {
	if eps <= 0 || eps >= 1 {
		panic("oneshot: eps out of (0,1)")
	}
	snaps := make([]gk.Snapshot, 0, len(streams))
	for _, stream := range streams {
		g := gk.New(eps / 2)
		for _, v := range stream {
			g.Insert(v)
		}
		sn := g.Snapshot()
		res.Words += int64(sn.Words())
		snaps = append(snaps, sn)
	}
	return func(x float64) int64 {
		var r int64
		for _, sn := range snaps {
			r += sn.Rank(x)
		}
		return r
	}, res
}

// RankRand implements the randomized one-shot quantile protocol of [13]:
// after learning n (k words up, one broadcast word per site down), every
// site sorts its local data and ships the elements at positions
// o_i, o_i+τ, o_i+2τ, … for a uniform offset o_i ∈ [0, τ) and stride
// τ = max(1, ⌊εn/√k⌋). The estimator Σ_i τ·|{shipped_i < x}| is unbiased
// with per-site variance ≤ τ²/4, so total variance ≤ k·τ²/4 ≤ (εn)²/4.
// Words: 2k (count exchange) + n/τ = 2k + √k/ε.
func RankRand(streams [][]float64, eps float64, rng *stats.RNG) (rank func(float64) float64, res Result) {
	if eps <= 0 || eps >= 1 {
		panic("oneshot: eps out of (0,1)")
	}
	k := len(streams)
	var n int64
	for _, s := range streams {
		n += int64(len(s))
	}
	res.Words += 2 * int64(k) // count collection + stride broadcast
	if n == 0 {
		return func(float64) float64 { return 0 }, res
	}
	tau := int64(eps * float64(n) / math.Sqrt(float64(k)))
	if tau < 1 {
		tau = 1
	}
	type shipped struct {
		values []float64 // sorted
	}
	sites := make([]shipped, 0, k)
	for _, stream := range streams {
		local := make([]float64, len(stream))
		copy(local, stream)
		sort.Float64s(local)
		offset := int64(rng.Intn(int(tau)))
		var sent []float64
		for pos := offset; pos < int64(len(local)); pos += tau {
			sent = append(sent, local[pos])
		}
		res.Words += int64(len(sent))
		sites = append(sites, shipped{values: sent})
	}
	return func(x float64) float64 {
		est := 0.0
		for _, s := range sites {
			c := sort.SearchFloat64s(s.values, x)
			est += float64(tau) * float64(c)
		}
		return est
	}, res
}
