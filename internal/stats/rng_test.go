package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(19)
	const p = 0.3
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli rate %v, want ~%v", rate, p)
	}
}

func TestGeometricMoments(t *testing.T) {
	r := New(23)
	const p = 0.2
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // failures before first success
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := New(29)
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestSkipGeometricMoments(t *testing.T) {
	// SkipGeometric must follow the same law as Geometric — the number of
	// failures before the first Bernoulli(p) success — since the protocols
	// substitute one skip draw for a run of per-arrival coins.
	r := New(59)
	const p = 0.05
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		g := float64(r.SkipGeometric(p))
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	wantMean := (1 - p) / p
	if math.Abs(mean-wantMean) > 0.05*wantMean {
		t.Fatalf("SkipGeometric mean = %v, want ~%v", mean, wantMean)
	}
	variance := sumSq/n - mean*mean
	wantVar := (1 - p) / (p * p)
	if math.Abs(variance-wantVar) > 0.1*wantVar {
		t.Fatalf("SkipGeometric variance = %v, want ~%v", variance, wantVar)
	}
}

func TestSkipGeometricTail(t *testing.T) {
	// P[X >= j] = (1-p)^j: the skip-sampled gap leaves each arrival the
	// same marginal chance of being silent as a per-arrival coin would.
	r := New(61)
	const p = 0.2
	const n = 200000
	counts := make([]int, 8)
	for i := 0; i < n; i++ {
		g := r.SkipGeometric(p)
		for j := int64(0); j < int64(len(counts)); j++ {
			if g >= j {
				counts[j]++
			}
		}
	}
	for j, c := range counts {
		got := float64(c) / n
		want := math.Pow(1-p, float64(j))
		if math.Abs(got-want) > 4*math.Sqrt(want/n)+0.003 {
			t.Fatalf("P[gap>=%d] = %v, want ~%v", j, got, want)
		}
	}
}

func TestSkipGeometricDegenerate(t *testing.T) {
	r := New(67)
	if g := r.SkipGeometric(1); g != 0 {
		t.Fatalf("SkipGeometric(1) = %d, want 0", g)
	}
	if g := r.SkipGeometric(1.5); g != 0 {
		t.Fatalf("SkipGeometric(1.5) = %d, want 0", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SkipGeometric(0) did not panic")
		}
	}()
	r.SkipGeometric(0)
}

func TestSkipLevelMatchesGeometricLevel(t *testing.T) {
	// An element reaches level L with probability 2^-L, so the gap between
	// level-L elements must be Geometric(2^-L); level 0 never skips.
	r := New(71)
	if g := r.SkipLevel(0); g != 0 {
		t.Fatalf("SkipLevel(0) = %d, want 0", g)
	}
	const level = 4
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.SkipLevel(level))
	}
	mean := sum / n
	p := math.Pow(0.5, level)
	want := (1 - p) / p // 15 for level 4
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("SkipLevel(%d) mean = %v, want ~%v", level, mean, want)
	}
}

func TestGeometricLevelDistribution(t *testing.T) {
	r := New(31)
	const n = 200000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[r.GeometricLevel()]++
	}
	// P[level >= l] = 2^-l; check the first few levels.
	atLeast := func(l int) int {
		s := 0
		for lev, c := range counts {
			if lev >= l {
				s += c
			}
		}
		return s
	}
	for l := 1; l <= 6; l++ {
		got := float64(atLeast(l)) / n
		want := math.Pow(0.5, float64(l))
		if math.Abs(got-want) > 4*math.Sqrt(want/n)+0.002 {
			t.Fatalf("P[level>=%d] = %v, want ~%v", l, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleKProperties(t *testing.T) {
	r := New(41)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKUniform(t *testing.T) {
	// Each element of [0,6) should appear in a 3-subset w.p. 1/2.
	r := New(43)
	const trials = 60000
	counts := make([]int, 6)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleK(6, 3) {
			counts[v]++
		}
	}
	for v, c := range counts {
		rate := float64(c) / trials
		if math.Abs(rate-0.5) > 0.01 {
			t.Fatalf("element %d inclusion rate %v, want ~0.5", v, rate)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(47)
	child := parent.Split()
	// The child stream must not equal the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split child collided with parent %d times", same)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(53)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(xs)
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}
