package stats

import (
	"math"
	"sort"
)

// Zipf draws items from {0, ..., n-1} with P[i] proportional to
// 1/(i+1)^alpha. It precomputes the CDF once, so sampling is O(log n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with skew alpha >= 0
// (alpha = 0 is uniform). It panics if n <= 0.
func NewZipf(rng *RNG, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed item.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the size of the sampler's domain.
func (z *Zipf) N() int { return len(z.cdf) }

// NormalCDF is Φ, the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Hypergeometric samples the number of "successes" observed when drawing
// sample draws without replacement from a population of size population
// containing successes marked elements. Used by the 1-bit lower-bound
// experiment (Appendix A).
func Hypergeometric(rng *RNG, population, successes, draws int) int {
	if draws < 0 || draws > population || successes < 0 || successes > population {
		panic("stats: Hypergeometric parameters out of range")
	}
	// Direct simulation of sequential draws; all experiment sizes are small
	// enough (k <= a few thousand) that O(draws) is fine.
	got := 0
	remainingPop := population
	remainingSucc := successes
	for i := 0; i < draws; i++ {
		if rng.Intn(remainingPop) < remainingSucc {
			got++
			remainingSucc--
		}
		remainingPop--
	}
	return got
}

// LogChoose returns log(n choose k) via lgamma, tolerant of boundary values.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// HypergeometricLogPMF returns log P[X = x] for the hypergeometric law with
// the given parameters.
func HypergeometricLogPMF(population, successes, draws, x int) float64 {
	return LogChoose(successes, x) + LogChoose(population-successes, draws-x) - LogChoose(population, draws)
}
