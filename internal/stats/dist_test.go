package stats

import (
	"math"
	"testing"
)

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	r := New(61)
	z := NewZipf(r, 8, 0)
	const n = 80000
	counts := make([]int, 8)
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	want := float64(n) / 8
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("alpha=0 bucket %d count %d not uniform (~%v)", i, c, want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(67)
	z := NewZipf(r, 100, 1.2)
	const n = 100000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("zipf counts not decreasing: c0=%d c10=%d c50=%d",
			counts[0], counts[10], counts[50])
	}
	// Item 0 should take roughly 1/H share; with alpha=1.2, n=100 it is
	// substantial. Just check it dominates.
	if float64(counts[0])/n < 0.1 {
		t.Fatalf("zipf head too light: %v", float64(counts[0])/n)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.99865},
		{-3, 0.00135},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-4 {
			t.Fatalf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestHypergeometricMoments(t *testing.T) {
	r := New(71)
	const pop, succ, draws = 200, 80, 50
	const n = 40000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(Hypergeometric(r, pop, succ, draws))
	}
	mean := sum / n
	want := float64(draws) * float64(succ) / float64(pop)
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("hypergeometric mean %v, want ~%v", mean, want)
	}
}

func TestHypergeometricBounds(t *testing.T) {
	r := New(73)
	for i := 0; i < 1000; i++ {
		x := Hypergeometric(r, 20, 5, 10)
		if x < 0 || x > 5 || x > 10 {
			t.Fatalf("hypergeometric out of range: %d", x)
		}
	}
	if x := Hypergeometric(r, 10, 10, 4); x != 4 {
		t.Fatalf("all-success population gave %d, want 4", x)
	}
	if x := Hypergeometric(r, 10, 0, 4); x != 0 {
		t.Fatalf("no-success population gave %d, want 0", x)
	}
}

func TestLogChoose(t *testing.T) {
	if got := LogChoose(5, 2); math.Abs(got-math.Log(10)) > 1e-9 {
		t.Fatalf("LogChoose(5,2) = %v, want log 10", got)
	}
	if got := LogChoose(5, 0); math.Abs(got) > 1e-9 {
		t.Fatalf("LogChoose(5,0) = %v, want 0", got)
	}
	if !math.IsInf(LogChoose(3, 5), -1) {
		t.Fatal("LogChoose(3,5) should be -Inf")
	}
}

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	const pop, succ, draws = 30, 12, 9
	sum := 0.0
	for x := 0; x <= draws; x++ {
		sum += math.Exp(HypergeometricLogPMF(pop, succ, draws, x))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v, want 1", sum)
	}
}
