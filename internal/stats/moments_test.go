package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1}, 1},
		{[]float64{3, 1, 2}, 2},
		{[]float64{5, 1, 4, 2}, 2},
		{[]float64{-1, -5, 0, 10, 2}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Fatalf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Median mutated input: %v", in)
	}
}

func TestMedianInt(t *testing.T) {
	if got := MedianInt([]int64{9, 4, 7}); got != 7 {
		t.Fatalf("MedianInt = %d, want 7", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("Variance of <2 samples should be 0")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if q := Quantile(xs, 0); q != 10 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 50 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 30 {
		t.Fatalf("q0.5 = %v", q)
	}
}

func TestMedianIsOrderStatistic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		m := Median(raw)
		cp := make([]float64, len(raw))
		copy(cp, raw)
		sort.Float64s(cp)
		return m == cp[(len(cp)-1)/2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianCopies(t *testing.T) {
	c := MedianCopies(1e6, 0.01)
	if c < 3 || c%2 == 0 {
		t.Fatalf("MedianCopies = %d, want odd >= 3", c)
	}
	// More instances or smaller delta should not decrease the count.
	if MedianCopies(1e9, 0.01) < c {
		t.Fatal("copies should grow with instances")
	}
	if MedianCopies(1e6, 0.001) < c {
		t.Fatal("copies should grow as delta shrinks")
	}
	// Degenerate inputs should still produce a sane value.
	if got := MedianCopies(0, 2); got < 1 || got%2 == 0 {
		t.Fatalf("degenerate MedianCopies = %d", got)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatal("RelErr(110,100) != 0.1")
	}
	if RelErr(90, 100) != 0.1 {
		t.Fatal("RelErr(90,100) != 0.1")
	}
	if RelErr(5, 0) != 5 {
		t.Fatal("RelErr with zero truth should be absolute")
	}
}

func TestFloorPow2(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 1}, {1.5, 1}, {2, 2}, {3, 2}, {4, 4}, {1000, 512}, {1024, 1024},
	}
	for _, c := range cases {
		if got := FloorPow2(c.in); got != c.want {
			t.Fatalf("FloorPow2(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FloorPow2(0.5) did not panic")
		}
	}()
	FloorPow2(0.5)
}

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{
		{0.5, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10},
	}
	for _, c := range cases {
		if got := CeilLog2(c.in); got != c.want {
			t.Fatalf("CeilLog2(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
