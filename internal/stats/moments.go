package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs (the lower of the two middle elements for
// even length). It panics on an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return cp[(len(cp)-1)/2]
}

// MedianInt returns the median of integer samples, as for Median.
func MedianInt(xs []int64) int64 {
	if len(xs) == 0 {
		panic("stats: MedianInt of empty slice")
	}
	cp := make([]int64, len(xs))
	copy(cp, xs)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[(len(cp)-1)/2]
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or 0 when
// fewer than two samples are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs by the nearest-rank
// method. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// MedianCopies returns the number of independent protocol copies needed so
// that the median of per-copy estimates is within the error bound for all of
// instances effective time instances with failure probability at most delta,
// assuming each copy fails at any one instance with probability at most 1/4
// (paper Section 1.2: O(log(instances/delta)) copies). The result is odd and
// at least 1.
func MedianCopies(instances float64, delta float64) int {
	if delta <= 0 || delta >= 1 {
		delta = 0.05
	}
	if instances < 1 {
		instances = 1
	}
	// Chernoff: 2t+1 copies fail at one instance w.p. <= exp(-c t); using
	// c = 1/8 (for per-copy failure 1/4) is conservative.
	t := int(math.Ceil(8 * math.Log(instances/delta)))
	if t < 1 {
		t = 1
	}
	if t%2 == 0 {
		t++
	}
	return t
}

// RelErr returns |est-truth|/truth; for truth == 0 it returns |est|
// (absolute error, so that early-stream checks remain meaningful).
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// FloorPow2 returns the largest power of two <= x, written ⌊x⌋₂ in the paper.
// It panics if x < 1.
func FloorPow2(x float64) float64 {
	if x < 1 {
		panic("stats: FloorPow2 with x < 1")
	}
	return math.Pow(2, math.Floor(math.Log2(x)))
}

// CeilLog2 returns ⌈log₂ x⌉ for x >= 1 (0 for x <= 1).
func CeilLog2(x float64) int {
	if x <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(x)))
}
