// Package stats provides the deterministic random-number streams,
// distribution samplers, and statistical helpers shared by all tracking
// protocols and experiments.
//
// Every source of randomness in the repository flows through an *RNG seeded
// explicitly by the caller, so simulations are reproducible bit-for-bit and
// statistical tests can use fixed seeds with generous tolerances.
package stats

import "math"

// RNG is a small, fast deterministic generator (splitmix64 state update with
// an xorshift-style output mix). It is not cryptographically secure; it is
// designed for reproducible simulation. The zero value is usable but all
// zero-seeded RNGs produce the same stream; prefer New with a distinct seed.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed. Distinct seeds give streams that are
// independent for all practical simulation purposes.
func New(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that small seeds (0, 1, 2, ...) diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Split derives a child RNG from r. The child's stream is independent of the
// parent's subsequent outputs. Used to hand independent randomness to each
// site or each protocol copy.
func (r *RNG) Split() *RNG {
	child := &RNG{}
	r.SplitInto(child)
	return child
}

// SplitInto reseeds child in place exactly as Split would seed a fresh RNG,
// without allocating. It draws one value from r, so interleaving SplitInto
// and Split calls produces identical child streams in either form.
func (r *RNG) SplitInto(child *RNG) {
	child.state = r.Uint64() ^ 0x9e3779b97f4a7c15
	// Same warm-up as New so small derived seeds diverge immediately.
	child.Uint64()
	child.Uint64()
}

// State returns the generator's single state word so a coordinator
// checkpoint can capture exactly where the stream is. Together with
// Restore it makes an RNG snapshot-able: the stream continues
// bit-identically from a restored state.
func (r *RNG) State() uint64 { return r.state }

// Restore rewinds (or fast-forwards) the generator to a state previously
// returned by State.
func (r *RNG) Restore(state uint64) { r.state = state }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials; the support is {0, 1, 2, ...}.
// For p >= 1 it returns 0. It panics if p <= 0.
func (r *RNG) Geometric(p float64) int {
	g := r.SkipGeometric(p)
	if g > 1<<40 {
		return 1 << 40 // historical int-sized cap
	}
	return int(g)
}

// SkipGeometric returns the number of failures before the first success in
// independent Bernoulli(p) trials, as an int64 — the gap a site can skip
// before its next communication-relevant arrival. Drawing the gap once
// replaces one Bernoulli draw per arrival with one draw per *message*, with
// an identical output distribution (the arrivals on which a per-arrival coin
// would come up heads form exactly this renewal process). For p >= 1 it
// returns 0; it panics if p <= 0.
func (r *RNG) SkipGeometric(p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("stats: SkipGeometric with non-positive p")
	}
	// Inversion: floor(log(U)/log(1-p)) has the right law. Guard against
	// U == 0 which would give +Inf.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > 1<<62 {
		return 1 << 62
	}
	return int64(g)
}

// SkipLevel returns the gap before the next element whose geometric level
// (see GeometricLevel) reaches at least level: Geometric(2^-level) failures.
// Level 0 always returns 0.
func (r *RNG) SkipLevel(level int) int64 {
	if level <= 0 {
		return 0
	}
	return r.SkipGeometric(math.Ldexp(1, -level))
}

// GeometricLevel returns the number of leading successful fair coin flips,
// i.e. a sample from the geometric(1/2) "level" distribution used by the
// continuous sampling protocol: P[level >= l] = 2^-l.
func (r *RNG) GeometricLevel() int {
	level := 0
	for {
		bits := r.Uint64()
		if bits != 0 {
			// Count trailing one-bits of a random word by inspecting
			// trailing zeros of its complement.
			for bits&1 == 1 {
				level++
				bits >>= 1
			}
			return level
		}
		level += 64
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs uniformly at random in place.
func (r *RNG) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// SampleK picks a uniformly random subset of size k from [0, n) and returns
// it in arbitrary order. It panics if k > n or k < 0.
func (r *RNG) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleK with k out of range")
	}
	// Partial Fisher-Yates over an index table.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}
