package stats

import (
	"math"
	"testing"
)

func TestLaplaceMoments(t *testing.T) {
	r := New(42)
	const n = 200000
	const scale = 5.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Laplace(scale)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	// Std of the sample mean is sqrt(2)·scale/sqrt(n) ≈ 0.016; allow 6σ.
	if math.Abs(mean) > 0.1 {
		t.Errorf("Laplace mean = %v, want ≈ 0", mean)
	}
	if want := 2 * scale * scale; math.Abs(variance-want) > 0.1*want {
		t.Errorf("Laplace variance = %v, want ≈ %v", variance, want)
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	r := New(7)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Laplace(1) > 0 {
			pos++
		}
	}
	if frac := float64(pos) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P[Laplace > 0] = %v, want ≈ 0.5", frac)
	}
}

func TestLaplaceDegenerateScale(t *testing.T) {
	r := New(1)
	if x := r.Laplace(0); x != 0 {
		t.Errorf("Laplace(0) = %v, want 0", x)
	}
	if x := r.Laplace(-3); x != 0 {
		t.Errorf("Laplace(-3) = %v, want 0", x)
	}
}

func TestTwoSidedGeometricMoments(t *testing.T) {
	r := New(99)
	const n = 200000
	const scale = 8.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := float64(r.TwoSidedGeometric(scale))
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.2 {
		t.Errorf("TwoSidedGeometric mean = %v, want ≈ 0", mean)
	}
	// Exact variance is 2e^(−1/s)/(1 − e^(−1/s))²; for s = 8 that is ≈ 124.7.
	q := -math.Expm1(-1 / scale)
	want := 2 * (1 - q) / (q * q)
	if math.Abs(variance-want) > 0.1*want {
		t.Errorf("TwoSidedGeometric variance = %v, want ≈ %v", variance, want)
	}
}

func TestTwoSidedGeometricSymmetryAndDegenerate(t *testing.T) {
	r := New(3)
	pos, neg := 0, 0
	const n = 100000
	for i := 0; i < n; i++ {
		switch x := r.TwoSidedGeometric(4); {
		case x > 0:
			pos++
		case x < 0:
			neg++
		}
	}
	if diff := math.Abs(float64(pos-neg)) / n; diff > 0.01 {
		t.Errorf("sign imbalance %v, want ≈ 0 (pos %d, neg %d)", diff, pos, neg)
	}
	if x := r.TwoSidedGeometric(0); x != 0 {
		t.Errorf("TwoSidedGeometric(0) = %v, want 0", x)
	}
}

func TestNoiseDeterminism(t *testing.T) {
	a, b := New(1234), New(1234)
	for i := 0; i < 1000; i++ {
		if x, y := a.Laplace(3), b.Laplace(3); x != y {
			t.Fatalf("Laplace stream diverged at %d: %v vs %v", i, x, y)
		}
		if x, y := a.TwoSidedGeometric(7), b.TwoSidedGeometric(7); x != y {
			t.Fatalf("TwoSidedGeometric stream diverged at %d: %v vs %v", i, x, y)
		}
	}
}

func TestRNGStateRestore(t *testing.T) {
	r := New(555)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	saved := r.State()
	want := make([]uint64, 20)
	for i := range want {
		want[i] = r.Uint64()
	}
	r.Restore(saved)
	for i := range want {
		if got := r.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverged at %d: %d vs %d", i, got, want[i])
		}
	}
}
