package stats

import "math"

// Laplace returns a sample from the Laplace (double-exponential)
// distribution with mean 0 and the given scale parameter b: density
// exp(-|x|/b)/2b, variance 2b². Non-positive scale returns 0, so callers
// can pass a computed scale without guarding the degenerate case.
//
// Sampling is by inversion, so one Laplace call consumes exactly one
// uniform draw (occasionally more, to reject the measure-zero endpoint
// that would map to -Inf) — the property the robust coordinator's
// checkpointing relies on.
func (r *RNG) Laplace(scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	u := r.Float64() - 0.5 // uniform in [-0.5, 0.5)
	for u == -0.5 {
		u = r.Float64() - 0.5
	}
	if u < 0 {
		return scale * math.Log1p(2*u)
	}
	return -scale * math.Log1p(-2*u)
}

// TwoSidedGeometric returns a sample from the discrete Laplace
// distribution with mean 0 and the given scale: the difference of two
// i.i.d. geometric variables with success probability q = 1 − e^(−1/scale),
// giving P[X = x] ∝ e^(−|x|/scale) on the integers and variance
// 2e^(−1/scale)/(1 − e^(−1/scale))² ≈ 2·scale² for large scales. This is
// the integer-valued noise the robust count protocol adds to communicated
// counters (arXiv 2311.00346): counts stay integers on the wire, and the
// tails match the continuous Laplace mechanism's. Non-positive scale
// returns 0.
func (r *RNG) TwoSidedGeometric(scale float64) int64 {
	if scale <= 0 {
		return 0
	}
	q := -math.Expm1(-1 / scale) // 1 − e^(−1/scale), in (0, 1) for finite scale
	return r.SkipGeometric(q) - r.SkipGeometric(q)
}
