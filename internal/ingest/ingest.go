// Package ingest is the concurrent multi-producer frontend of the tracking
// runtime: it makes one mounted protocol safe to feed from any number of
// goroutines, on every transport.
//
// Every transport behind the runtime seam (internal/runtime) mandates a
// single feeding goroutine — Arrive enforces the paper's
// instant-communication model by running each cascade to quiescence before
// the next element is injected, and that choreography is inherently serial.
// A server ingesting events from many connection-handling goroutines would
// have to funnel everything through one thread and serialize on it.
//
// The Frontend keeps the serial transport contract intact and moves the
// concurrency one layer up, where the paper's protocols are naturally
// batch-friendly:
//
//   - producers stage arrivals into per-site sharded buffers (one lock and
//     one ring per site, padded apart so producers on different sites never
//     share a cache line). Consecutive same-(item, value) arrivals coalesce
//     into runs, so a hot flow occupies one slot no matter how long it gets;
//   - a single drainer goroutine sweeps the shards round-robin and feeds
//     each staged run through Transport.ArriveBatch — the proven closed-form
//     batch fast path, which skip-samples to the next protocol message
//     instead of paying per element;
//   - the buffers are bounded (Options.BufferRuns staged runs per site).
//     When a shard is full the Policy decides: Block applies backpressure to
//     the producer, Drop discards the observation and counts it;
//   - queries run through Query, which excludes the drainer between batch
//     feeds. ArriveBatch returns only after its cascade has quiesced, so a
//     query always sees a consistent post-cascade protocol state — never a
//     half-delivered message sequence.
//
// Per-site arrival order is preserved (each producer's observations at a
// given site are fed FIFO); the interleaving *across* sites depends on the
// producers' schedule, exactly as it would if the producers were the paper's
// k independent streams. Estimates therefore carry the same ε guarantees as
// a serial run, but are not bit-identical to one — the root package's
// equivalence test pins the ε-accuracy and the per-element communication
// profile instead.
package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Policy selects what a full staging buffer does to a producer.
type Policy int

const (
	// Block makes the producer wait until the drainer frees a slot
	// (lossless backpressure; the default).
	Block Policy = iota
	// Drop discards the observation and increments the dropped counter
	// (load shedding; Dropped reports the total).
	Drop
)

// Options configures a Frontend.
type Options struct {
	// BufferRuns is the per-site staging capacity in runs (coalesced
	// same-(item,value) stretches, not elements). 0 means the default 256.
	BufferRuns int
	// Policy selects Block (default) or Drop when a site's buffer is full.
	Policy Policy
}

// DefaultBufferRuns is the per-site staging capacity used when
// Options.BufferRuns is zero.
const DefaultBufferRuns = 256

// Feeder is the serial ingestion seam the Frontend drives — satisfied by
// *runtime.Runtime and by runtime.Transport. Calls are made from the single
// drainer goroutine only, preserving the transports' contract.
type Feeder interface {
	ArriveBatch(site int, item int64, value float64, count int64)
}

// run is one coalesced stretch of identical arrivals.
type run struct {
	item  int64
	value float64
	count int64
}

// shard is one site's staging buffer. The trailing pad keeps neighboring
// shards on separate cache-line pairs, so producers feeding different sites
// do not false-share (x86 prefetches lines in pairs; 128 covers that and
// every common line size).
type shard struct {
	mu       sync.Mutex
	space    sync.Cond // signaled by the drainer when slots free up (Block)
	runs     []run     // ring buffer of staged runs
	head     int       // oldest staged run
	n        int       // staged runs
	enqueued int64     // elements accepted into this shard, ever
	_        [128]byte
}

// Frontend makes one mounted protocol safe for concurrent ingestion and
// querying. Create with New, feed with Observe/ObserveBatch from any number
// of goroutines, synchronize with Flush, read protocol state inside Query,
// and Close when every producer has stopped.
type Frontend struct {
	feed   Feeder
	shards []shard
	policy Policy

	// feedMu excludes queries and batch feeds: the drainer holds it for
	// exactly one ArriveBatch call at a time, so a Query always runs at a
	// quiescent instant between cascades.
	feedMu sync.Mutex

	// ingested counts elements the drainer has fed through (cascade fully
	// quiesced); each shard counts its own accepted elements (enqueued) so
	// producers on different sites share no counter cache line. dropped
	// counts elements discarded under Policy Drop (cold path, so a global
	// atomic is fine).
	ingested int64
	dropped  int64

	progMu   sync.Mutex
	progCond sync.Cond

	// err is the drainer's terminal error (guarded by progMu): the
	// transport failed underneath it — closed out from under the frontend
	// mid-run, most commonly. failed is its lock-free mirror for the
	// producers' hot path. Once terminal, staged and newly observed
	// elements are discarded (counted in dropped, best effort), blocked
	// producers and flushers wake, and Flush/Close return the error
	// instead of waiting for ingestion that can never happen.
	err    error
	failed atomic.Bool

	wake        chan struct{}
	quit        chan struct{}
	drainerDone chan struct{}
	closed      atomic.Bool
}

// New starts a frontend over feed for k sites, launching the drainer
// goroutine. feed must not be used by anyone else until Close returns.
func New(feed Feeder, k int, opt Options) *Frontend {
	if k < 1 {
		panic("ingest: need at least one site")
	}
	if opt.BufferRuns < 0 {
		panic("ingest: negative Options.BufferRuns")
	}
	buf := opt.BufferRuns
	if buf == 0 {
		buf = DefaultBufferRuns
	}
	if opt.Policy != Block && opt.Policy != Drop {
		panic("ingest: unknown Options.Policy")
	}
	f := &Frontend{
		feed:        feed,
		shards:      make([]shard, k),
		policy:      opt.Policy,
		wake:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		drainerDone: make(chan struct{}),
	}
	for i := range f.shards {
		sh := &f.shards[i]
		sh.runs = make([]run, buf)
		sh.space.L = &sh.mu
	}
	f.progCond.L = &f.progMu
	go f.drain()
	return f
}

// Observe stages one element arriving at site. Safe for concurrent use with
// every other Frontend method except Close.
func (f *Frontend) Observe(site int, item int64, value float64) {
	f.put(site, item, value, 1)
}

// ObserveBatch stages count identical elements arriving at site. The whole
// batch occupies one staged run (or extends the newest one), regardless of
// count.
func (f *Frontend) ObserveBatch(site int, item int64, value float64, count int64) {
	f.put(site, item, value, count)
}

func (f *Frontend) put(site int, item int64, value float64, count int64) {
	if count <= 0 {
		return
	}
	if f.closed.Load() {
		panic("ingest: Observe after Close")
	}
	if f.failed.Load() {
		// The transport is gone; nothing staged can ever be fed.
		atomic.AddInt64(&f.dropped, count)
		return
	}
	sh := &f.shards[site]
	sh.mu.Lock()
	// wake is decided at insert time, not entry: a producer that slept in
	// space.Wait can resume to find the drainer took everything and went
	// back to sleep, so its insert is an empty -> non-empty transition even
	// though the shard was full when the producer arrived.
	wake := false
	for {
		if sh.n > 0 {
			tail := &sh.runs[(sh.head+sh.n-1)%len(sh.runs)]
			if tail.item == item && tail.value == value {
				tail.count += count
				break
			}
		}
		if sh.n < len(sh.runs) {
			wake = sh.n == 0
			sh.runs[(sh.head+sh.n)%len(sh.runs)] = run{item: item, value: value, count: count}
			sh.n++
			break
		}
		if f.policy == Drop {
			sh.mu.Unlock()
			atomic.AddInt64(&f.dropped, count)
			return
		}
		sh.space.Wait()
		if f.failed.Load() {
			// fail woke every blocked producer: backpressure would now
			// block forever, so the observation is shed instead.
			sh.mu.Unlock()
			atomic.AddInt64(&f.dropped, count)
			return
		}
	}
	sh.enqueued += count
	sh.mu.Unlock()
	// Nudge the drainer only on the empty -> non-empty transition: staging
	// into a non-empty shard extends work the drainer is guaranteed to see,
	// because it re-sweeps every shard after any sweep that fed something
	// and only sleeps after a sweep that found all shards empty.
	if wake {
		select {
		case f.wake <- struct{}{}:
		default:
		}
	}
}

// take empties site's shard into dst, freeing every slot for producers.
func (f *Frontend) take(site int, dst []run) []run {
	sh := &f.shards[site]
	sh.mu.Lock()
	for ; sh.n > 0; sh.n-- {
		dst = append(dst, sh.runs[sh.head])
		sh.head = (sh.head + 1) % len(sh.runs)
	}
	sh.head = 0
	sh.space.Broadcast()
	sh.mu.Unlock()
	return dst
}

// fail records the drainer's terminal error and wakes everyone who could
// otherwise wait forever: flushers (progCond) and producers blocked on
// backpressure (every shard's space cond).
func (f *Frontend) fail(err error) {
	f.progMu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.progMu.Unlock()
	f.failed.Store(true)
	f.progCond.Broadcast()
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		sh.space.Broadcast()
		sh.mu.Unlock()
	}
}

// feedOne feeds one staged run through the transport, converting a
// transport panic — Arrive on a transport that was closed out from under
// the frontend mid-run — into the terminal error instead of crashing the
// process from a background goroutine (or, before the runtime grew its
// use-after-close guard, deadlocking on in-flight accounting no loop would
// ever retire).
func (f *Frontend) feedOne(site int, r run) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			f.fail(fmt.Errorf("ingest: transport failed underneath the drainer: %v", p))
		}
	}()
	f.feedMu.Lock()
	defer f.feedMu.Unlock()
	f.feed.ArriveBatch(site, r.item, r.value, r.count)
	return true
}

// drain is the single feeding goroutine: it sweeps the shards round-robin,
// feeding staged runs through the transport's batch fast path, and sleeps
// when a full sweep finds nothing. A terminal transport failure discards
// the staged residue (counted in dropped) and exits; Flush and Close
// surface the error.
func (f *Frontend) drain() {
	defer close(f.drainerDone)
	scratch := make([]run, 0, 64)
	sweep := func() (fed, ok bool) {
		for site := range f.shards {
			scratch = f.take(site, scratch[:0])
			for j, r := range scratch {
				if !f.feedOne(site, r) {
					// The failed run and everything behind it in scratch
					// were already removed from the shards, so discard()
					// cannot see them: shed them here, keeping the
					// produced == Arrivals + Dropped reconciliation exact.
					for _, rest := range scratch[j:] {
						atomic.AddInt64(&f.dropped, rest.count)
					}
					return fed, false
				}
				f.progMu.Lock()
				f.ingested += r.count
				f.progMu.Unlock()
				f.progCond.Broadcast()
				fed = true
			}
		}
		return fed, true
	}
	discard := func() {
		for site := range f.shards {
			scratch = f.take(site, scratch[:0])
			for _, r := range scratch {
				atomic.AddInt64(&f.dropped, r.count)
			}
		}
	}
	for {
		fed, ok := sweep()
		if !ok {
			discard()
			return
		}
		if fed {
			continue
		}
		select {
		case <-f.wake:
		case <-f.quit:
			// Close has been called: no new producers, so one sweep finding
			// nothing means the buffers are empty for good.
			for {
				fed, ok := sweep()
				if !ok {
					discard()
					return
				}
				if !fed {
					return
				}
			}
		}
	}
}

// Flush blocks until every element staged by Observe/ObserveBatch calls
// that returned before Flush was called has been fed through the transport
// and its cascade has quiesced. Elements staged concurrently with Flush may
// or may not be covered. If the transport failed underneath the drainer,
// Flush returns its terminal error immediately instead of waiting for
// ingestion that can never happen.
func (f *Frontend) Flush() error {
	var target int64
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		target += sh.enqueued
		sh.mu.Unlock()
	}
	f.progMu.Lock()
	defer f.progMu.Unlock()
	for f.ingested < target && f.err == nil {
		f.progCond.Wait()
	}
	return f.err
}

// Err returns the drainer's terminal error, nil while the frontend is
// healthy.
func (f *Frontend) Err() error {
	f.progMu.Lock()
	defer f.progMu.Unlock()
	return f.err
}

// Query runs fn at a quiescent instant: the drainer is excluded between
// batch feeds, and each feed returns only after its message cascade has
// fully quiesced, so fn sees a consistent post-cascade protocol state. fn
// sees everything ingested up to some recent instant — call Flush first for
// an everything-staged-so-far barrier. Queries serialize with each other.
func (f *Frontend) Query(fn func()) {
	f.feedMu.Lock()
	defer f.feedMu.Unlock()
	fn()
}

// Dropped reports the total elements discarded under Policy Drop.
func (f *Frontend) Dropped() int64 { return atomic.LoadInt64(&f.dropped) }

// Close drains everything staged and stops the drainer goroutine. No
// Observe/ObserveBatch may be in flight or arrive afterwards (Close is the
// producers-have-stopped barrier); queries remain valid after Close. Close
// does not touch the underlying transport — the owner closes that
// separately. It returns the drainer's terminal error, if the transport
// failed underneath it mid-run.
func (f *Frontend) Close() error {
	if f.closed.Swap(true) {
		<-f.drainerDone
		return f.Err()
	}
	close(f.quit)
	<-f.drainerDone
	return f.Err()
}
