package ingest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disttrack/internal/count"
	"disttrack/internal/netsim"
	"disttrack/internal/runtime"
)

// feedCall records one ArriveBatch the frontend made.
type feedCall struct {
	site  int
	item  int64
	value float64
	count int64
}

// recFeeder records batch feeds; when gated, every call first waits for one
// token, so tests can hold the drainer mid-feed deterministically.
type recFeeder struct {
	gate chan struct{}

	mu    sync.Mutex
	calls []feedCall
	elems int64
}

func (r *recFeeder) ArriveBatch(site int, item int64, value float64, count int64) {
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	r.calls = append(r.calls, feedCall{site, item, value, count})
	r.elems += count
	r.mu.Unlock()
}

func (r *recFeeder) snapshot() ([]feedCall, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]feedCall(nil), r.calls...), r.elems
}

// TestCoalescing pins that same-(item,value) arrivals staged while the
// drainer is busy merge into runs: far fewer batch feeds than elements, with
// nothing lost.
func TestCoalescing(t *testing.T) {
	fd := &recFeeder{gate: make(chan struct{}, 1024)}
	f := New(fd, 2, Options{})
	fd.gate <- struct{}{} // let the drainer feed exactly one batch, then stall
	f.Observe(0, 7, 0)
	// While the drainer is parked, a hot flow lands: it must coalesce.
	for i := 0; i < 999; i++ {
		f.Observe(0, 7, 0)
	}
	for i := 0; i < 1024; i++ {
		fd.gate <- struct{}{}
	}
	f.Flush()
	f.Close()
	calls, elems := fd.snapshot()
	if elems != 1000 {
		t.Fatalf("fed %d elements, want 1000", elems)
	}
	if len(calls) > 3 {
		t.Errorf("1000 identical arrivals took %d batch feeds, want coalesced runs (<= 3)", len(calls))
	}
	for _, c := range calls {
		if c.site != 0 || c.item != 7 {
			t.Errorf("unexpected feed %+v", c)
		}
	}
}

// TestPerSiteFIFO pins that a site's staged runs are fed in staging order.
func TestPerSiteFIFO(t *testing.T) {
	fd := &recFeeder{}
	f := New(fd, 1, Options{BufferRuns: 4})
	for i := 0; i < 200; i++ {
		f.Observe(0, int64(i), 0) // distinct items: no coalescing
	}
	f.Flush()
	f.Close()
	calls, elems := fd.snapshot()
	if elems != 200 {
		t.Fatalf("fed %d elements, want 200", elems)
	}
	next := int64(0)
	for _, c := range calls {
		for j := int64(0); j < c.count; j++ {
			if c.item != next {
				t.Fatalf("out-of-order feed: got item %d, want %d", c.item, next)
			}
			next++
		}
	}
}

// TestBlockBackpressure pins the lossless policy: a producer facing a full
// shard waits instead of dropping, and everything it staged is eventually
// fed.
func TestBlockBackpressure(t *testing.T) {
	fd := &recFeeder{gate: make(chan struct{})}
	f := New(fd, 1, Options{BufferRuns: 2, Policy: Block})
	const total = 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			f.Observe(0, int64(i), 0) // distinct items: one slot each
		}
	}()
	// The ring holds 2 runs and the stalled drainer at most one taken sweep;
	// the producer cannot possibly finish all 10 while the gate is shut.
	select {
	case <-done:
		t.Fatal("producer finished against a full buffer and a stalled drainer")
	case <-time.After(50 * time.Millisecond):
	}
	for i := 0; i < total; i++ {
		fd.gate <- struct{}{}
	}
	<-done
	f.Flush()
	f.Close()
	_, elems := fd.snapshot()
	if elems != total {
		t.Fatalf("fed %d elements, want %d (Block policy must be lossless)", elems, total)
	}
	if f.Dropped() != 0 {
		t.Fatalf("Block policy dropped %d elements", f.Dropped())
	}
}

// TestDropPolicy pins load shedding: with a full shard and a stalled
// drainer, new observations are discarded and counted, and the accounting
// (fed + dropped = offered) closes exactly.
func TestDropPolicy(t *testing.T) {
	const offered = 100
	fd := &recFeeder{gate: make(chan struct{}, offered)}
	f := New(fd, 1, Options{BufferRuns: 2, Policy: Drop})
	for i := 0; i < offered; i++ {
		f.Observe(0, int64(i), 0)
	}
	// The empty gate means the drainer completed zero feeds: at most the
	// ring (2 runs) plus one taken sweep were accepted, so drops are
	// certain by now.
	if f.Dropped() == 0 {
		t.Fatal("no drops despite a full buffer and a stalled drainer")
	}
	for i := 0; i < offered; i++ {
		fd.gate <- struct{}{}
	}
	f.Flush()
	f.Close()
	_, elems := fd.snapshot()
	if got := elems + f.Dropped(); got != offered {
		t.Fatalf("fed %d + dropped %d = %d, want %d", elems, f.Dropped(), got, offered)
	}
}

// TestConcurrentProducersFlush hammers the frontend from many goroutines
// and pins that Flush is a complete barrier: everything staged before it is
// fed through.
func TestConcurrentProducersFlush(t *testing.T) {
	fd := &recFeeder{}
	const k, producers, per = 8, 16, 5000
	f := New(fd, k, Options{})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Observe((p+i)%k, int64(i%17), 0)
			}
		}(p)
	}
	wg.Wait()
	f.Flush()
	_, elems := fd.snapshot()
	if elems != producers*per {
		t.Fatalf("after Flush fed %d elements, want %d", elems, producers*per)
	}
	f.Close()
}

// TestQueryExcludesFeeds pins the quiesced-snapshot contract: while Query's
// callback runs, no batch feed is in progress.
func TestQueryExcludesFeeds(t *testing.T) {
	var inFeed atomic.Bool
	fd := &checkFeeder{in: &inFeed}
	f := New(fd, 4, Options{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Observe(p, int64(i), 0)
			}
		}(p)
	}
	for i := 0; i < 200; i++ {
		f.Query(func() {
			if inFeed.Load() {
				t.Error("Query callback ran concurrently with a batch feed")
			}
		})
	}
	close(stop)
	wg.Wait()
	f.Flush()
	f.Close()
}

type checkFeeder struct {
	in *atomic.Bool
}

func (c *checkFeeder) ArriveBatch(site int, item int64, value float64, count int64) {
	c.in.Store(true)
	c.in.Store(false)
}

// TestCloseDrains pins Close's draining semantics: staged-but-unfed runs
// are ingested before Close returns.
func TestCloseDrains(t *testing.T) {
	fd := &recFeeder{}
	f := New(fd, 2, Options{})
	for i := 0; i < 1000; i++ {
		f.ObserveBatch(i%2, int64(i%5), 0, 3)
	}
	f.Close()
	_, elems := fd.snapshot()
	if elems != 3000 {
		t.Fatalf("Close left %d of 3000 elements unfed", 3000-elems)
	}
	// Idempotent.
	f.Close()
}

// dyingFeeder simulates a transport closed out from under the drainer: the
// first `live` feeds succeed, everything after panics exactly like the
// runtime's use-after-Close guard.
type dyingFeeder struct {
	live  int64
	calls int64
}

func (d *dyingFeeder) ArriveBatch(site int, item int64, value float64, count int64) {
	if atomic.AddInt64(&d.calls, 1) > d.live {
		panic("runtime: transport used after Close")
	}
}

// TestTransportDeathSurfacesThroughFlush is the regression test for the
// drainer's terminal-error path: before the fix, a transport failing
// underneath the frontend either crashed the process from the drainer
// goroutine or deadlocked every Flush and backpressured producer forever.
// Now the error surfaces through Flush/Close/Err, blocked producers shed
// and unblock, and later observations are counted as dropped.
func TestTransportDeathSurfacesThroughFlush(t *testing.T) {
	f := New(&dyingFeeder{live: 1}, 1, Options{BufferRuns: 4})
	f.Observe(0, 1, 0) // fed while the transport is alive

	// Distinct items so nothing coalesces: the buffer fills, the producer
	// below blocks on backpressure, and the drainer's next feed dies.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 64; i++ {
			f.Observe(0, 2+i, 0)
		}
	}()
	select {
	case <-done: // producers unblocked by fail()
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked on backpressure after the transport died")
	}

	flushed := make(chan error, 1)
	go func() { flushed <- f.Flush() }()
	select {
	case err := <-flushed:
		if err == nil {
			t.Fatal("Flush returned nil after the transport died underneath the drainer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush still blocked after the transport died")
	}

	// Later observations are shed, not deadlocked.
	before := f.Dropped()
	f.ObserveBatch(0, 9, 0, 10)
	if got := f.Dropped() - before; got != 10 {
		t.Errorf("post-death ObserveBatch dropped %d elements, want 10", got)
	}
	if err := f.Close(); err == nil {
		t.Error("Close returned nil after a terminal transport failure")
	}
	if f.Err() == nil {
		t.Error("Err returned nil after a terminal transport failure")
	}
}

// TestRealTransportClosedUnderneath runs the same regression against a real
// concurrent transport: the goroutine fabric is Closed out from under the
// frontend mid-run, and the runtime's use-after-Close guard plus the
// drainer's recovery turn what used to be a silent in-flight deadlock into
// a terminal error.
func TestRealTransportClosedUnderneath(t *testing.T) {
	p, _ := count.NewProtocol(count.Config{K: 2, Eps: 0.1}, 1)
	cl := netsim.Start(p)
	f := New(runtime.New(cl), 2, Options{})
	for i := 0; i < 100; i++ {
		f.Observe(i%2, 0, 0)
	}
	if err := f.Flush(); err != nil {
		t.Fatalf("healthy Flush: %v", err)
	}
	cl.Close() // out from under the frontend

	deadline := time.Now().Add(5 * time.Second)
	for {
		f.Observe(0, 0, 0) // wakes the drainer into the dead transport
		if f.Err() != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drainer never surfaced the dead transport")
		}
		time.Sleep(time.Millisecond)
	}
	if err := f.Close(); err == nil {
		t.Error("Close returned nil after the transport was closed mid-run")
	}
}
