// Package freq implements the frequency-tracking (heavy hitters) protocols
// of Section 3 of the paper: the randomized O(√k/ε·logN)-communication,
// O(1/(ε√k))-space algorithm, and the deterministic Θ(k/ε·logN) baseline
// of [29] realized with SpaceSaving counters and rounded reports.
package freq

import (
	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/stats"
	"disttrack/internal/summary/sticky"
)

// CounterMsg reports a sticky counter's current value (2 words: item and
// count). The round and virtual-site incarnation are implicit: the
// coordinator attributes the message to the sender's current incarnation.
type CounterMsg struct {
	Item  int64
	Count int64
}

// Words implements proto.Message.
func (CounterMsg) Words() int { return 2 }

// SampleMsg forwards one independently sampled element (1 word).
type SampleMsg struct {
	Item int64
}

// Words implements proto.Message.
func (SampleMsg) Words() int { return 1 }

// ResetMsg notifies the coordinator that the site exceeded its per-round
// space budget and continues as a fresh virtual site (1 word).
type ResetMsg struct{}

// Words implements proto.Message.
func (ResetMsg) Words() int { return 1 }

// Config carries the shared protocol parameters.
type Config struct {
	K   int
	Eps float64
	// Rescale divides Eps internally (the paper's constant rescaling step
	// that turns Chebyshev's constant success probability into 0.9).
	// Zero means 3.
	Rescale float64
	// DisableVirtualSites turns off the space-bounding reset (ablation: the
	// paper's variance analysis still holds, but per-site space may grow to
	// O(√k/ε) when one site receives everything).
	DisableVirtualSites bool
	// BiasedEstimator switches the coordinator to the paper's equation (2)
	// (ablation: demonstrates the Θ(εn/√k)-per-site bias the unbiased
	// estimator (4) exists to remove).
	BiasedEstimator bool
}

func (c Config) effEps() float64 {
	r := c.Rescale
	if r == 0 {
		r = 3
	}
	return c.Eps / r
}

func (c Config) validate() {
	if c.K <= 0 {
		panic("freq: K must be positive")
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		panic("freq: Eps out of (0,1)")
	}
	if c.Rescale < 0 {
		panic("freq: negative Rescale")
	}
}

// Site is the per-site state machine of the randomized frequency tracker.
//
// Each arrival consumes two independent Bernoulli(p) coins: the copy coin
// (insert a new counter, or report an incremented one) and the sampling coin
// (forward the element to maintain d_ij). Both streams are skip-sampled: the
// site draws the geometric gap to each stream's next heads once per heads
// and decrements counters in between, so RNG work is O(messages). The
// arrivals a per-coin implementation would mark heads form exactly this
// renewal process, so the protocol's output distribution is unchanged.
type Site struct {
	cfg Config
	rs  *rounds.Site
	rng *stats.RNG

	p             float64
	list          *sticky.List
	roundArrivals int64 // arrivals charged to the current virtual site
	skipCopy      int64 // tails remaining before the copy coin's next heads
	skipSample    int64 // tails remaining before the sampling coin's next heads
}

// NewSite returns a fresh site.
func NewSite(cfg Config, rng *stats.RNG) *Site {
	cfg.validate()
	return &Site{
		cfg:  cfg,
		rs:   rounds.NewSite(),
		rng:  rng,
		p:    1,
		list: sticky.New(1, rng.Split()),
	}
}

// Arrive implements proto.Site. Protocol messages are emitted before the
// round-machinery doubling report so that in-flight counters are attributed
// to the round they were generated in.
func (s *Site) Arrive(item int64, value float64, out func(proto.Message)) {
	// Virtual-site split when the per-round space budget n̄/k is exhausted.
	if !s.cfg.DisableVirtualSites {
		if limit := s.budget(); limit > 0 && s.roundArrivals >= limit {
			out(ResetMsg{})
			s.list.Reset()
			s.roundArrivals = 0
		}
	}
	s.roundArrivals++

	// One p-coin per copy: it inserts (and reports) a new counter, or
	// reports the incremented counter of an existing one. This single-coin
	// structure is what makes the forward/backward first-success variables
	// X1, X2 of the paper's Lemma 3.1 well defined.
	count := s.list.Bump(item)
	if s.skipCopy == 0 {
		s.skipCopy = s.rng.SkipGeometric(s.p)
		if count > 0 {
			out(CounterMsg{Item: item, Count: count})
		} else {
			s.list.Insert(item)
			out(CounterMsg{Item: item, Count: 1})
		}
	} else {
		s.skipCopy--
	}

	// Independent sampling at rate p (maintains d_ij at the coordinator).
	if s.skipSample == 0 {
		s.skipSample = s.rng.SkipGeometric(s.p)
		out(SampleMsg{Item: item})
	} else {
		s.skipSample--
	}

	s.rs.Arrive(out)
}

// ArriveBatch implements proto.BatchSite: during a run of the same item,
// the next interesting arrival — next heads on either coin stream, next
// doubling report, or virtual-site budget exhaustion — is known in closed
// form, and everything before it is a counter bump.
func (s *Site) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	quiet := s.skipCopy
	if s.skipSample < quiet {
		quiet = s.skipSample
	}
	if g := s.rs.Gap(); g < quiet {
		quiet = g
	}
	if !s.cfg.DisableVirtualSites {
		if limit := s.budget(); limit > 0 {
			if g := limit - s.roundArrivals; g < quiet {
				quiet = g
				if quiet < 0 {
					quiet = 0
				}
			}
		}
	}
	if quiet > count {
		quiet = count
	}
	if quiet > 0 {
		s.roundArrivals += quiet
		s.list.BumpRun(item, quiet)
		s.rs.Skip(quiet)
		s.skipCopy -= quiet
		s.skipSample -= quiet
	}
	if quiet == count {
		return count
	}
	s.Arrive(item, value, out)
	return quiet + 1
}

// budget returns the virtual-site arrival budget n̄/k (0 = no limit yet).
func (s *Site) budget() int64 {
	nBar := s.rs.NBar()
	if nBar == 0 {
		return 0
	}
	b := nBar / int64(s.cfg.K)
	if b < 1 {
		b = 1
	}
	return b
}

// Receive implements proto.Site: on a round broadcast the site clears its
// memory and restarts with the new p (paper Section 3.1, "Dealing with a
// decreasing p").
func (s *Site) Receive(m proto.Message, out func(proto.Message)) {
	if !s.rs.Deliver(m) {
		return
	}
	s.p = rounds.P(s.rs.NBar(), s.cfg.K, s.cfg.effEps())
	s.list = sticky.New(s.p, s.rng.Split())
	s.roundArrivals = 0
	// Both coin streams restart at the new p (i.i.d. coins are memoryless,
	// so discarding the residual gaps preserves the distribution).
	s.skipCopy = s.rng.SkipGeometric(s.p)
	s.skipSample = s.rng.SkipGeometric(s.p)
}

// SpaceWords implements proto.Site.
func (s *Site) SpaceWords() int {
	return s.rs.SpaceWords() + s.list.SpaceWords() + 3
}

// P exposes the current sampling probability (tests).
func (s *Site) P() float64 { return s.p }

// vsite is the coordinator's record of one virtual-site incarnation.
type vsite struct {
	owner int             // physical site the incarnation belongs to
	cbar  map[int64]int64 // last reported counter per item
	d     map[int64]int64 // independent-sample counts per item
}

func newVsite(owner int) *vsite {
	return &vsite{owner: owner, cbar: make(map[int64]int64), d: make(map[int64]int64)}
}

// roundState is the coordinator's record of one round.
type roundState struct {
	p   float64
	cur []*vsite // current incarnation per physical site
	all []*vsite // every incarnation opened during the round
}

func newRoundState(k int, p float64) *roundState {
	rs := &roundState{p: p, cur: make([]*vsite, k)}
	for i := range rs.cur {
		v := newVsite(i)
		rs.cur[i] = v
		rs.all = append(rs.all, v)
	}
	return rs
}

// Coordinator accumulates per-round, per-incarnation counters and samples
// and answers point frequency queries.
type Coordinator struct {
	cfg  Config
	rc   *rounds.Coordinator
	rnds []*roundState

	// Restore cursors, live only while RestoreState streams snapshot
	// records: snapV is the incarnation the next counter/sample records
	// belong to, and snapFresh marks that the constructed round list has
	// been replaced by restored rounds.
	snapV     *vsite
	snapFresh bool
}

// NewCoordinator returns the coordinator for the randomized tracker.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.validate()
	c := &Coordinator{cfg: cfg, rc: rounds.NewCoordinator(cfg.K)}
	c.rnds = append(c.rnds, newRoundState(cfg.K, 1))
	return c
}

// Receive implements proto.Coordinator.
func (c *Coordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if c.rc.Deliver(from, m, broadcast) {
		p := rounds.P(c.rc.NBar(), c.cfg.K, c.cfg.effEps())
		c.rnds = append(c.rnds, newRoundState(c.cfg.K, p))
		return
	}
	cur := c.rnds[len(c.rnds)-1]
	switch msg := m.(type) {
	case CounterMsg:
		cur.cur[from].cbar[msg.Item] = msg.Count
	case SampleMsg:
		cur.cur[from].d[msg.Item]++
	case ResetMsg:
		v := newVsite(from)
		cur.cur[from] = v
		cur.all = append(cur.all, v)
	}
}

// Estimate returns the tracker's estimate of item j's global frequency,
// summing the per-(round, incarnation) unbiased estimators of equation (4):
// c̄ − 2 + 2/p when a counter exists, else −d/p. With
// Config.BiasedEstimator it applies equation (2) instead (0 when no counter
// exists) to expose its bias.
func (c *Coordinator) Estimate(j int64) float64 {
	est := 0.0
	for _, r := range c.rnds {
		for _, v := range r.all {
			if cb, ok := v.cbar[j]; ok {
				est += float64(cb) - 2 + 2/r.p
			} else if !c.cfg.BiasedEstimator {
				est -= float64(v.d[j]) / r.p
			}
		}
	}
	return est
}

// Round returns the number of completed round transitions.
func (c *Coordinator) Round() int { return c.rc.Round() }

// Resync implements proto.Resyncer: a rejoining site learns the current
// round (and with it its sampling probability) from the replayed round
// broadcast; it starts a fresh virtual-site incarnation on its first
// counter activity, exactly as a space reset would.
func (c *Coordinator) Resync(emit func(proto.Message)) { c.rc.Resync(emit) }

// Snapshot-record keys (the range 1..9 belongs to the embedded rounds
// component; see rounds.Coordinator.SnapshotState).
const (
	stateRound  = 10 // F = the round's sampling probability p
	stateVsite  = 11 // from = owning site: opens one incarnation
	stateDCount = 12 // A = item, B = its independent-sample count
)

// SnapshotState implements proto.Snapshotter: the round component's
// records, then every round in order — its p, then every incarnation in
// creation order with its counters (the protocol's own CounterMsg) and
// sample counts. Replaying incarnations in creation order makes the
// current-incarnation pointers come out right by last-wins, exactly as the
// live ResetMsg path built them.
func (c *Coordinator) SnapshotState(emit func(from int, m proto.Message)) {
	c.rc.SnapshotState(emit)
	for _, r := range c.rnds {
		emit(-1, proto.StateMsg{Key: stateRound, F: r.p})
		for _, v := range r.all {
			emit(v.owner, proto.StateMsg{Key: stateVsite})
			for item, cnt := range v.cbar {
				emit(v.owner, CounterMsg{Item: item, Count: cnt})
			}
			for item, cnt := range v.d {
				emit(v.owner, proto.StateMsg{Key: stateDCount, A: item, B: cnt})
			}
		}
	}
}

// RestoreState implements proto.Snapshotter. Unlike Receive, restored
// records never open rounds via the round machinery — the first round
// record replaces the constructed round 0 wholesale.
func (c *Coordinator) RestoreState(from int, m proto.Message) {
	if c.rc.RestoreState(from, m) {
		return
	}
	switch msg := m.(type) {
	case proto.StateMsg:
		switch msg.Key {
		case stateRound:
			if !c.snapFresh {
				c.rnds, c.snapFresh = nil, true
			}
			c.rnds = append(c.rnds, &roundState{p: msg.F, cur: make([]*vsite, c.cfg.K)})
		case stateVsite:
			if from < 0 || from >= c.cfg.K || len(c.rnds) == 0 {
				return
			}
			r := c.rnds[len(c.rnds)-1]
			v := newVsite(from)
			r.cur[from] = v
			r.all = append(r.all, v)
			c.snapV = v
		case stateDCount:
			if c.snapV != nil {
				c.snapV.d[msg.A] = msg.B
			}
		}
	case CounterMsg:
		if c.snapV != nil {
			c.snapV.cbar[msg.Item] = msg.Count
		}
	}
}

// P returns the current round's sampling probability.
func (c *Coordinator) P() float64 { return c.rnds[len(c.rnds)-1].p }

// SpaceWords implements proto.Coordinator (the coordinator's state is
// allowed to grow; the model only bounds site space).
func (c *Coordinator) SpaceWords() int {
	w := c.rc.SpaceWords()
	for _, r := range c.rnds {
		for _, v := range r.all {
			w += 2*len(v.cbar) + 2*len(v.d) + 1
		}
	}
	return w
}

// NewProtocol assembles the randomized frequency tracker.
func NewProtocol(cfg Config, seed uint64) (proto.Protocol, *Coordinator) {
	cfg.validate()
	root := stats.New(seed)
	coord := NewCoordinator(cfg)
	sites := make([]proto.Site, cfg.K)
	for i := range sites {
		sites[i] = NewSite(cfg, root.Split())
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
