package freq

import (
	"math"
	"testing"

	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// truth tracks exact global item frequencies.
type truth map[int64]int64

func (tr truth) add(j int64) { tr[j]++ }

func TestExactWhilePIsOne(t *testing.T) {
	// While p = 1 every counter insertion and update is reported, so
	// estimates are exact: c̄ − 2 + 2/1 = c̄ = f_ij.
	cfg := Config{K: 4, Eps: 0.2, Rescale: 1} // √k/ε = 10
	p, coord := NewProtocol(cfg, 1)
	h := sim.New(p)
	tr := truth{}
	for i := 0; i < 9; i++ {
		item := int64(i % 3)
		tr.add(item)
		h.Arrive(i%4, item, 0)
		for j := int64(0); j < 3; j++ {
			if est := coord.Estimate(j); est != float64(tr[j]) {
				t.Fatalf("p=1 phase: Estimate(%d) = %v, want %d", j, est, tr[j])
			}
		}
	}
}

func TestEndToEndUnbiased(t *testing.T) {
	// A fixed stream with a known mid-frequency item; the estimator mean
	// over independent runs must converge to the truth even after several
	// round restarts.
	const k = 9
	const n = 12000
	const item = int64(7)
	cfg := Config{K: k, Eps: 0.1, Rescale: 1}
	// Item 7 appears every 10th arrival; everything else is distinct noise.
	itemOf := func(i int) int64 {
		if i%10 == 0 {
			return item
		}
		return int64(1000 + i)
	}
	const trials = 200
	ests := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		p, coord := NewProtocol(cfg, uint64(3000+tr))
		h := sim.New(p)
		for i := 0; i < n; i++ {
			h.Arrive(i%k, itemOf(i), 0)
		}
		ests[tr] = coord.Estimate(item)
	}
	wantF := float64(n / 10)
	mean := stats.Mean(ests)
	se := stats.StdDev(ests)/math.Sqrt(trials) + 1e-9
	if math.Abs(mean-wantF) > 5*se+1 {
		t.Fatalf("Estimate mean %v, want %v (se %v)", mean, wantF, se)
	}
}

func TestEquation2BiasAblation(t *testing.T) {
	// Items appearing ~1/p times per site: the naive estimator (2) has a
	// positive bias ~f_ij·(1-p)^f_ij per site, which sums to a visible
	// offset across sites; the correct estimator (4) does not.
	const k = 16
	const n = 20000
	const item = int64(42)
	// item appears once every k arrivals, round-robin: f_ij = n/k² per
	// site... make it sparser: every 50 arrivals.
	itemOf := func(i int) int64 {
		if i%50 == 0 {
			return item
		}
		return int64(100000 + i)
	}
	run := func(biased bool, seed uint64) float64 {
		cfg := Config{K: k, Eps: 0.1, Rescale: 1, BiasedEstimator: biased}
		p, coord := NewProtocol(cfg, seed)
		h := sim.New(p)
		for i := 0; i < n; i++ {
			h.Arrive(i%k, itemOf(i), 0)
		}
		return coord.Estimate(item)
	}
	const trials = 150
	var biasedSum, unbiasedSum float64
	for tr := 0; tr < trials; tr++ {
		biasedSum += run(true, uint64(6000+tr))
		unbiasedSum += run(false, uint64(6000+tr))
	}
	wantF := float64(n / 50)
	biasedErr := biasedSum/trials - wantF
	unbiasedErr := unbiasedSum/trials - wantF
	if math.Abs(unbiasedErr) >= math.Abs(biasedErr) {
		t.Fatalf("unbiased estimator error %v not smaller than biased %v",
			unbiasedErr, biasedErr)
	}
	if biasedErr < 1 {
		t.Fatalf("expected visible positive bias from equation (2), got %v", biasedErr)
	}
}

func TestCoverageZipf(t *testing.T) {
	const k = 16
	const eps = 0.1
	const n = 30000
	rng := stats.New(701)
	itemF := workload.ZipfItems(500, 1.1, rng)
	items := make([]int64, n)
	tr := truth{}
	for i := range items {
		items[i] = itemF(i)
	}
	p, coord := NewProtocol(Config{K: k, Eps: eps}, 31)
	h := sim.New(p)
	queries := []int64{0, 1, 2, 5, 10, 50, 200, 499} // head through tail
	bad, checks := 0, 0
	for i := 0; i < n; i++ {
		tr.add(items[i])
		h.Arrive(i%k, items[i], 0)
		if i%97 != 0 { // check a deterministic subset of instants
			continue
		}
		for _, q := range queries {
			checks++
			if math.Abs(coord.Estimate(q)-float64(tr[q])) > eps*float64(i+1) {
				bad++
			}
		}
	}
	frac := float64(bad) / float64(checks)
	if frac > 0.10 {
		t.Fatalf("%.1f%% of (instant, item) checks outside band (budget 10%%)", 100*frac)
	}
}

func TestVirtualSitesBoundSpace(t *testing.T) {
	// All arrivals at a single site: without virtual sites the sticky list
	// grows to ~p·n per round; with them it stays at ~p·n̄/k.
	const k = 16
	const eps = 0.05
	const n = 60000
	run := func(disable bool) int {
		cfg := Config{K: k, Eps: eps, Rescale: 1, DisableVirtualSites: disable}
		p, _ := NewProtocol(cfg, 41)
		h := sim.New(p)
		h.SpaceProbeEvery = 64
		for i := 0; i < n; i++ {
			h.Arrive(0, int64(i), 0) // all distinct, all at site 0
		}
		return h.Metrics().MaxSiteSpace
	}
	with := run(false)
	without := run(true)
	if with*4 > without {
		t.Fatalf("virtual sites gave no space relief: with=%d without=%d", with, without)
	}
	// Absolute bound: p·n̄/k with slack. p ≤ √k/(ε_eff·n̄) so p·n̄/k ≤
	// 1/(ε√k)·(small constants) — allow a generous constant plus the O(1)
	// fixed state.
	budget := int(20/(eps*math.Sqrt(k))) + 64
	if with > budget {
		t.Fatalf("site space %d exceeds O(1/(ε√k)) budget %d", with, budget)
	}
}

func TestVirtualSiteResetsAccounted(t *testing.T) {
	const k = 8
	cfg := Config{K: k, Eps: 0.1, Rescale: 1}
	p, coord := NewProtocol(cfg, 43)
	h := sim.New(p)
	tr := truth{}
	const n = 20000
	for i := 0; i < n; i++ {
		item := int64(i % 5)
		tr.add(item)
		h.Arrive(0, item, 0) // single hot site forces splits
	}
	// Estimates must remain accurate across incarnations.
	for j := int64(0); j < 5; j++ {
		if err := math.Abs(coord.Estimate(j) - float64(tr[j])); err > cfg.Eps*n {
			t.Fatalf("post-split Estimate(%d) off by %v (> %v)", j, err, cfg.Eps*float64(n))
		}
	}
}

func TestDeterministicAlwaysWithinEps(t *testing.T) {
	const k = 8
	const eps = 0.1
	const n = 30000
	rng := stats.New(703)
	itemF := workload.ZipfItems(200, 1.0, rng)
	p, coord := NewDetProtocol(k, eps)
	h := sim.New(p)
	tr := truth{}
	queries := []int64{0, 1, 3, 10, 42, 199}
	for i := 0; i < n; i++ {
		item := itemF(i)
		tr.add(item)
		h.Arrive(i%k, item, 0)
		if i%101 != 0 {
			continue
		}
		for _, q := range queries {
			if err := math.Abs(coord.Estimate(q) - float64(tr[q])); err > eps*float64(i+1) {
				t.Fatalf("deterministic error %v > εn at instant %d item %d", err, i+1, q)
			}
		}
	}
}

func TestDeterministicSpaceIsOneOverEps(t *testing.T) {
	const k = 4
	const eps = 0.05
	p, _ := NewDetProtocol(k, eps)
	h := sim.New(p)
	h.SpaceProbeEvery = 100
	rng := stats.New(709)
	itemF := workload.UniformItems(10000, rng)
	for i := 0; i < 40000; i++ {
		h.Arrive(i%k, itemF(i), 0)
	}
	// m = 8/eps+1 slots, 3 words each, plus lastReported and rounds state.
	budget := 5 * int(8/eps)
	if sp := h.Metrics().MaxSiteSpace; sp > budget {
		t.Fatalf("deterministic site space %d exceeds budget %d", sp, budget)
	}
}

func TestRandomizedCheaperThanDeterministicLargeK(t *testing.T) {
	const k = 64
	const eps = 0.02
	const n = 80000
	rng := stats.New(711)
	itemF := workload.ZipfItems(1000, 1.0, rng)
	events := make([]workload.Event, n)
	for i := range events {
		events[i] = workload.Event{Site: i % k, Item: itemF(i)}
	}
	p, _ := NewProtocol(Config{K: k, Eps: eps, Rescale: 1}, 47)
	h := sim.New(p)
	h.Run(events, nil)
	randWords := h.Metrics().Words()

	dp, _ := NewDetProtocol(k, eps)
	dh := sim.New(dp)
	dh.Run(events, nil)
	detWords := dh.Metrics().Words()

	if randWords >= detWords {
		t.Fatalf("randomized words %d not below deterministic %d", randWords, detWords)
	}
}

func TestSitesClearAtRoundBoundary(t *testing.T) {
	cfg := Config{K: 4, Eps: 0.5, Rescale: 1}
	p, coord := NewProtocol(cfg, 53)
	h := sim.New(p)
	for i := 0; i < 10000; i++ {
		h.Arrive(i%4, int64(i%3), 0)
	}
	if coord.Round() < 3 {
		t.Fatalf("expected several rounds, got %d", coord.Round())
	}
	// After many arrivals the per-site sticky lists should hold only the
	// current round's counters: at most 3 items.
	for i, s := range p.Sites {
		site := s.(*Site)
		if site.list.Len() > 3 {
			t.Fatalf("site %d list has %d counters; rounds not clearing", i, site.list.Len())
		}
	}
}

func TestUnknownItemEstimate(t *testing.T) {
	cfg := Config{K: 2, Eps: 0.3}
	p, coord := NewProtocol(cfg, 59)
	h := sim.New(p)
	for i := 0; i < 100; i++ {
		h.Arrive(i%2, 1, 0)
	}
	if est := coord.Estimate(999); est != 0 {
		t.Fatalf("estimate of never-seen item = %v, want 0", est)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, Eps: 0.1},
		{K: 4, Eps: 0},
		{K: 4, Eps: 1.5},
		{K: 4, Eps: 0.1, Rescale: -2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic", i)
				}
			}()
			cfg.validate()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewDetSite bad k did not panic")
			}
		}()
		NewDetSite(0, 0.1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewDetSite bad eps did not panic")
			}
		}()
		NewDetSite(2, 0)
	}()
}

func TestMessageWords(t *testing.T) {
	if (CounterMsg{}).Words() != 2 {
		t.Fatal("CounterMsg should be 2 words")
	}
	if (SampleMsg{}).Words() != 1 {
		t.Fatal("SampleMsg should be 1 word")
	}
	if (ResetMsg{}).Words() != 1 {
		t.Fatal("ResetMsg should be 1 word")
	}
	if (DetReportMsg{}).Words() != 3 {
		t.Fatal("DetReportMsg should be 3 words")
	}
}
