package freq

// Hierarchical (tree) assembly of the randomized frequency tracker. The
// aggregator tracks which items its shard has reported activity for and, at
// each quiescent instant, pushes the increase in its per-item estimate
// upward as virtual arrivals of that item. Per-item true frequencies are
// nondecreasing, so clamping each item's feed to its running maximum keeps
// the virtual stream sound (arrivals cannot be retracted) while the
// estimate itself may wiggle (the −d/p sample terms).
//
// The deterministic baseline has no tree assembly: its SpaceSaving
// summaries admit no lossless merge path, which is exactly the gap the
// facade's topology validation pins.

import (
	"disttrack/internal/proto"
	"disttrack/internal/stats"
)

// Agg is the frequency aggregator: the child-facing Coordinator plus a
// per-item feed ledger and an insertion-ordered dirty set. Only items
// touched by a CounterMsg or SampleMsg since the last drain can have moved,
// so DrainFeed is O(recent activity), not O(tracked items).
type Agg struct {
	*Coordinator
	fed   map[int64]int64
	dirty []int64
	mark  map[int64]bool
}

// NewAgg wraps a child-facing coordinator as an aggregator.
func NewAgg(c *Coordinator) *Agg {
	return &Agg{Coordinator: c, fed: make(map[int64]int64), mark: make(map[int64]bool)}
}

// Receive implements proto.Coordinator, recording which items moved.
func (a *Agg) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	a.Coordinator.Receive(from, m, send, broadcast)
	switch msg := m.(type) {
	case CounterMsg:
		a.touch(msg.Item)
	case SampleMsg:
		a.touch(msg.Item)
	}
}

func (a *Agg) touch(item int64) {
	if !a.mark[item] {
		a.mark[item] = true
		a.dirty = append(a.dirty, item)
	}
}

// DrainFeed implements proto.Aggregator: for each item touched since the
// last quiescent instant, feed the growth of its shard estimate upward.
// Iterating the dirty list in insertion order keeps the virtual stream —
// and with it every message above this node — deterministic.
func (a *Agg) DrainFeed(feed func(item int64, value float64, count int64)) {
	for _, item := range a.dirty {
		delete(a.mark, item)
		if est := int64(a.Estimate(item)); est > a.fed[item] {
			feed(item, 0, est-a.fed[item])
			a.fed[item] = est
		}
	}
	a.dirty = a.dirty[:0]
}

// SeedFed primes the feed ledger after a coordinator recovery: every item
// the restored state knows about is considered already fed up to its
// current estimate.
func (a *Agg) SeedFed() {
	for _, r := range a.rnds {
		for _, v := range r.all {
			for item := range v.cbar {
				a.seedItem(item)
			}
			for item := range v.d {
				a.seedItem(item)
			}
		}
	}
}

func (a *Agg) seedItem(item int64) {
	if _, ok := a.fed[item]; ok {
		return
	}
	if est := int64(a.Estimate(item)); est > 0 {
		a.fed[item] = est
	} else {
		a.fed[item] = 0
	}
}

// NewTreeProtocol assembles the randomized frequency tracker as a
// two-level tree (see count.NewTreeProtocol for the shape): each level runs
// at the split budget proto.SplitEps(eps, 2), and the root coordinator
// answers Estimate queries for the whole tree.
func NewTreeProtocol(cfg Config, fanout int, seed uint64) (proto.Tree, *Coordinator) {
	cfg.validate()
	if fanout < 2 {
		panic("freq: tree fanout must be >= 2")
	}
	groups := (cfg.K + fanout - 1) / fanout
	if groups < 2 {
		panic("freq: tree needs at least two groups (k must exceed fanout)")
	}
	eps := proto.SplitEps(cfg.Eps, 2)
	root := stats.New(seed)
	tr := proto.Tree{Fanout: fanout}
	for g := 0; g < groups; g++ {
		size := fanout
		if rem := cfg.K - g*fanout; rem < size {
			size = rem
		}
		gcfg := Config{K: size, Eps: eps, Rescale: cfg.Rescale,
			DisableVirtualSites: cfg.DisableVirtualSites, BiasedEstimator: cfg.BiasedEstimator}
		sites := make([]proto.Site, size)
		for i := range sites {
			sites[i] = NewSite(gcfg, root.Split())
		}
		tr.Groups = append(tr.Groups, proto.Protocol{Coord: NewAgg(NewCoordinator(gcfg)), Sites: sites})
	}
	rcfg := Config{K: groups, Eps: eps, Rescale: cfg.Rescale,
		DisableVirtualSites: cfg.DisableVirtualSites, BiasedEstimator: cfg.BiasedEstimator}
	rootCoord := NewCoordinator(rcfg)
	rsites := make([]proto.Site, groups)
	for i := range rsites {
		rsites[i] = NewSite(rcfg, root.Split())
	}
	tr.Root = proto.Protocol{Coord: rootCoord, Sites: rsites}
	return tr, rootCoord
}
