package freq

import (
	"sync"

	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/summary/spacesaving"
)

// DetReportMsg reports a SpaceSaving slot's state (3 words: slot, item,
// count). It travels as a pooled pointer message: boxing a value into the
// proto.Message interface allocates per report, and reports are the
// deterministic tracker's dominant traffic. Draw with NewDetReport; the
// coordinator recycles the shell after copying it.
type DetReportMsg struct {
	Slot  int
	Item  int64
	Count int64
}

// Words implements proto.Message (value receiver, so both the pooled
// pointer form and plain values satisfy the interface).
func (DetReportMsg) Words() int { return 3 }

// detReportPool recycles report shells. A mutex-guarded stack rather than
// sync.Pool: Put-ting into a sync.Pool boxes the pointer and allocates the
// very shell the pool exists to avoid.
var detReportPool struct {
	mu   sync.Mutex
	free []*DetReportMsg
}

// NewDetReport draws a report message from the shell pool (the wire decoder
// uses it too, so decoded frames recycle the same shells).
func NewDetReport(slot int, item, count int64) *DetReportMsg {
	detReportPool.mu.Lock()
	var r *DetReportMsg
	if n := len(detReportPool.free); n > 0 {
		r = detReportPool.free[n-1]
		detReportPool.free = detReportPool.free[:n-1]
		detReportPool.mu.Unlock()
	} else {
		detReportPool.mu.Unlock()
		r = new(DetReportMsg)
	}
	r.Slot, r.Item, r.Count = slot, item, count
	return r
}

// RecycleDetReport returns a delivered report's shell to the pool. Only the
// final consumer may call it, exactly once, after its last read.
func RecycleDetReport(r *DetReportMsg) {
	detReportPool.mu.Lock()
	detReportPool.free = append(detReportPool.free, r)
	detReportPool.mu.Unlock()
}

// DetSite is the per-site half of the deterministic frequency baseline: the
// optimal Θ(k/ε·logN) deterministic tracker of [29], realized as a
// SpaceSaving summary whose monotone counters are reported every time they
// cross a fresh multiple of T = max(1, ⌊εn̄/(8k)⌋).
//
// Error analysis (per query item, summed over sites): staleness < k·T ≤
// εn̄/8 ≤ εn/8; SpaceSaving overestimation Σ_i n_i/m = εn/8 for m = 8/ε
// slots; stale-label slack at most another n_i/m + T per site (a slot only
// changes label while it is the minimum, so its count is ≤ n_i/m). Total
// well under εn.
type DetSite struct {
	k   int
	eps float64
	rs  *rounds.Site
	ss  *spacesaving.Summary

	lastReported map[int]int64 // per slot, the count at its last report
}

// NewDetSite returns a deterministic site.
func NewDetSite(k int, eps float64) *DetSite {
	if k <= 0 {
		panic("freq: K must be positive")
	}
	if eps <= 0 || eps >= 1 {
		panic("freq: eps out of (0,1)")
	}
	m := int(8/eps) + 1
	return &DetSite{
		k:            k,
		eps:          eps,
		rs:           rounds.NewSite(),
		ss:           spacesaving.New(m),
		lastReported: make(map[int]int64, m),
	}
}

// threshold returns the current reporting granularity T.
func (s *DetSite) threshold() int64 {
	nBar := s.rs.NBar()
	t := int64(s.eps * float64(nBar) / (8 * float64(s.k)))
	if t < 1 {
		t = 1
	}
	return t
}

// Arrive implements proto.Site.
func (s *DetSite) Arrive(item int64, value float64, out func(proto.Message)) {
	c := s.ss.Add(item)
	if c.Count >= s.lastReported[c.Slot]+s.threshold() {
		out(NewDetReport(c.Slot, c.Item, c.Count))
		s.lastReported[c.Slot] = c.Count
	}
	s.rs.Arrive(out)
}

// ArriveBatch implements proto.BatchSite. SpaceSaving's heap layout depends
// on the exact sequence of sift operations, so bulk counter increments are
// not state-identical to repeated Adds; the batch is delivered element by
// element (proto.ArriveSerial), preserving the stop-at-first-message
// contract.
func (s *DetSite) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	return proto.ArriveSerial(s.Arrive, item, value, count, out)
}

// Receive implements proto.Site (round broadcasts only adjust T implicitly
// through n̄; no state is cleared — counters are global and monotone).
func (s *DetSite) Receive(m proto.Message, out func(proto.Message)) {
	s.rs.Deliver(m)
}

// SpaceWords implements proto.Site: O(1/ε).
func (s *DetSite) SpaceWords() int {
	return s.rs.SpaceWords() + s.ss.SpaceWords() + len(s.lastReported)
}

// DetCoordinator mirrors each site's reported slots and answers point
// queries by summing the counts of slots labeled with the query item.
type DetCoordinator struct {
	rc    *rounds.Coordinator
	slots []map[int]DetReportMsg // per site: slot id -> last report
}

// NewDetCoordinator returns the deterministic coordinator.
func NewDetCoordinator(k int) *DetCoordinator {
	c := &DetCoordinator{rc: rounds.NewCoordinator(k), slots: make([]map[int]DetReportMsg, k)}
	for i := range c.slots {
		c.slots[i] = make(map[int]DetReportMsg)
	}
	return c
}

// Receive implements proto.Coordinator.
func (c *DetCoordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if c.rc.Deliver(from, m, broadcast) {
		return
	}
	if r, ok := m.(*DetReportMsg); ok {
		c.slots[from][r.Slot] = *r
		RecycleDetReport(r)
	}
}

// Estimate returns the deterministic estimate of item j's frequency.
func (c *DetCoordinator) Estimate(j int64) float64 {
	var est int64
	for _, site := range c.slots {
		for _, r := range site {
			if r.Item == j {
				est += r.Count
			}
		}
	}
	return float64(est)
}

// SpaceWords implements proto.Coordinator.
func (c *DetCoordinator) SpaceWords() int {
	w := c.rc.SpaceWords()
	for _, site := range c.slots {
		w += 3 * len(site)
	}
	return w
}

// NewDetProtocol assembles the deterministic frequency tracker.
func NewDetProtocol(k int, eps float64) (proto.Protocol, *DetCoordinator) {
	coord := NewDetCoordinator(k)
	sites := make([]proto.Site, k)
	for i := range sites {
		sites[i] = NewDetSite(k, eps)
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
